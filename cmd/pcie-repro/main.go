// Command pcie-repro regenerates every table and figure of the paper's
// evaluation: Figures 1, 2, 4a-c, 5, 6, 7a-b, 8 and 9 plus Tables 1
// and 2. TSV series suitable for gnuplot are written to the output
// directory; tables and a paper-versus-measured summary go to stdout.
//
// Usage:
//
//	pcie-repro                 # quick run into ./repro-out
//	pcie-repro -full -out dir  # paper-scale sample counts
//	pcie-repro -only fig9      # a single experiment
//	pcie-repro -parallel 8     # sweep worker count (default GOMAXPROCS)
//
// Experiment points run on the internal/runner worker pool; results are
// collected in submission order, so the generated files are
// byte-identical for every -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pciebench/internal/report"
)

func main() {
	var (
		out      = flag.String("out", "repro-out", "output directory for TSV series")
		full     = flag.Bool("full", false, "paper-scale sample counts (slower)")
		only     = flag.String("only", "", "run a single experiment (fig1..fig9, table1, table2)")
		parallel = flag.Int("parallel", 0, "experiment worker count (0 = GOMAXPROCS); output is identical for any value")
	)
	flag.Parse()

	q := report.Quick
	if *full {
		q = report.Full
	}
	report.SetParallelism(*parallel)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	type experiment struct {
		id  string
		run func() error
	}
	writeFig := func(fig *report.Figure) error {
		path := filepath.Join(*out, fig.ID+".tsv")
		if err := os.WriteFile(path, []byte(fig.TSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
		return nil
	}

	experiments := []experiment{
		{"table1", func() error {
			t := report.Table1()
			fmt.Println(t.Render())
			return os.WriteFile(filepath.Join(*out, "table1.tsv"), []byte(t.TSV()), 0o644)
		}},
		{"fig1", func() error { return writeFig(report.Fig1()) }},
		{"fig2", func() error {
			fig, err := report.Fig2(q)
			if err != nil {
				return err
			}
			return writeFig(fig)
		}},
		{"fig4", func() error {
			figs, err := report.Fig4(q)
			if err != nil {
				return err
			}
			for _, f := range figs {
				if err := writeFig(f); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig5", func() error {
			fig, err := report.Fig5(q)
			if err != nil {
				return err
			}
			return writeFig(fig)
		}},
		{"fig6", func() error {
			fig, err := report.Fig6(q)
			if err != nil {
				return err
			}
			return writeFig(fig)
		}},
		{"fig7", func() error {
			figs, err := report.Fig7(q)
			if err != nil {
				return err
			}
			for _, f := range figs {
				if err := writeFig(f); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig8", func() error {
			fig, err := report.Fig8(q)
			if err != nil {
				return err
			}
			return writeFig(fig)
		}},
		{"fig9", func() error {
			fig, err := report.Fig9(q)
			if err != nil {
				return err
			}
			return writeFig(fig)
		}},
		{"table2", func() error {
			t, err := report.Table2(q)
			if err != nil {
				return err
			}
			fmt.Println(t.Render())
			return os.WriteFile(filepath.Join(*out, "table2.tsv"), []byte(t.TSV()), 0o644)
		}},
		{"ablations", func() error {
			if err := writeFig(report.AblationMPS()); err != nil {
				return err
			}
			for _, run := range []func(report.Quality) (*report.Figure, error){
				report.AblationGen4, report.AblationWalkers, report.AblationInFlight,
			} {
				fig, err := run(q)
				if err != nil {
					return err
				}
				if err := writeFig(fig); err != nil {
					return err
				}
			}
			return nil
		}},
		{"expect", func() error {
			t, err := report.Expectations(q)
			if err != nil {
				return err
			}
			fmt.Println(t.Render())
			return os.WriteFile(filepath.Join(*out, "expectations.tsv"), []byte(t.TSV()), 0o644)
		}},
	}

	for _, e := range experiments {
		if *only != "" && !strings.HasPrefix(e.id, *only) && e.id != "expect" {
			continue
		}
		start := time.Now()
		fmt.Printf("== %s ==\n", e.id)
		if err := e.run(); err != nil {
			fatal(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Printf("  (%.1fs)\n", time.Since(start).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcie-repro:", err)
	os.Exit(1)
}
