package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the command as the shell would and captures stdout.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestListSweeps(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2", "fig4", "fig9", "table2-ddio", "wl-imix", "wl-burst", "cells"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestRunRegisteredSweep(t *testing.T) {
	out, err := runCLI(t, "-run", "table2-ddio")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache", "warm", "cold", "lat_rd:median"} {
		if !strings.Contains(out, want) {
			t.Errorf("-run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithOverrides(t *testing.T) {
	// Shrink the grid and move it to another system: the overrides must
	// land in the emitted header and rows.
	out, err := runCLI(t, "-run", "table2-ddio", "-format", "tsv",
		"cache=warm", "system=NFP6000-SNB", "n=50")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "\ncold\t") {
		t.Errorf("axis override did not replace values:\n%s", out)
	}
	if !strings.Contains(out, "\nwarm\t") {
		t.Errorf("override output missing warm row:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus-flag"},                            // unknown flag
		{"-run", "no-such-sweep"},                  // unknown sweep
		{"-run", "table2-ddio", "bogus=1"},         // unknown override key
		{"-run", "table2-ddio", "-format", "yaml"}, // unknown emitter
		{"-spec", "does-not-exist.json"},           // missing spec file
		{"stray-arg"},                              // overrides without -run/-spec
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestSpecFile(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{
		"name": "cli-test",
		"axes": [{"name": "transfer", "values": ["8", "64"]}],
		"base": {"system": "NFP6000-HSW", "bench": "lat_rd",
		         "window": "4K", "buffer": "64K", "nojitter": "true", "n": "40"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-spec", good, "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "transfer,lat_rd:median") {
		t.Errorf("csv output:\n%s", out)
	}

	for name, body := range map[string]string{
		"syntax.json":  `{"name": "x", "axes": [`,
		"unknown.json": `{"name": "x", "axes": [{"name": "transfer", "values": ["8"]}], "frobnicate": 1}`,
		"badaxis.json": `{"name": "x", "axes": [{"name": "warp", "values": ["9"]}]}`,
		"badval.json":  `{"name": "x", "axes": [{"name": "cache", "values": ["lukewarm"]}]}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := runCLI(t, "-spec", path); err == nil {
			t.Errorf("%s accepted, want error", name)
		}
	}
}

func TestReproduceSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measured experiment; run without -short")
	}
	dir := t.TempDir()
	out, err := runCLI(t, "-only", "table1", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "NFP6000-HSW") {
		t.Errorf("table1 output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.tsv")); err != nil {
		t.Errorf("table1.tsv not written: %v", err)
	}
}

// TestFaultFlagOverrides: -ber/-cto/-retrain translate to validated
// axis overrides for -run/-spec, and bad values fail fast.
func TestFaultFlagOverrides(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "ber-goodput", "-ber", "1e-6", "-cto", "1ms",
		"-retrain", "1s", "-format", "tsv", "n=100"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "1e-6") {
		t.Errorf("-ber override missing from grid:\n%s", stdout.String())
	}
	for _, bad := range [][]string{
		{"-run", "ber-goodput", "-ber", "2"},
		{"-run", "ber-goodput", "-cto", "soon"},
		{"-run", "ber-goodput", "-retrain", "-1us"},
		{"-ber", "1e-6"}, // overrides need -run or -spec
	} {
		if err := run(bad, &stdout, &stderr); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}
