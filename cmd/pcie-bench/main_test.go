package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the command as the shell would and captures stdout.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestListSystems(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NFP6000-HSW", "NetFPGA-HSW", "NFP6000-BDW"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestListSweeps(t *testing.T) {
	out, err := runCLI(t, "-sweeps")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4", "fig9", "cells"} {
		if !strings.Contains(out, want) {
			t.Errorf("-sweeps missing %q:\n%s", want, out)
		}
	}
}

func TestSingleBenchJSON(t *testing.T) {
	out, err := runCLI(t, "-bench", "bw_rd", "-n", "500", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, out)
	}
	if res.Bench != "bw_rd" || res.System != "NFP6000-HSW" || res.Gbps <= 0 {
		t.Errorf("result = %+v", res)
	}

	out, err = runCLI(t, "-bench", "lat_rd", "-n", "200", "-json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("latency -json output not JSON: %v\n%s", err, out)
	}
	if res.Latency == nil || res.Latency.Median <= 0 {
		t.Errorf("latency result = %+v", res)
	}
}

func TestSingleBenchText(t *testing.T) {
	out, err := runCLI(t, "-bench", "lat_wrrd", "-n", "200")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "LAT_WRRD") || !strings.Contains(out, "med=") {
		t.Errorf("text output:\n%s", out)
	}
}

func TestWorkloadBench(t *testing.T) {
	out, err := runCLI(t, "-bench", "workload", "-queues", "2", "-sizes", "imix",
		"-arrival", "rate:2M", "-n", "400")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WORKLOAD", "p99.9", "q0", "q1"} {
		if !strings.Contains(out, want) {
			t.Errorf("workload output missing %q:\n%s", want, out)
		}
	}

	out, err = runCLI(t, "-bench", "workload", "-nic", "dpdk", "-sizes", "64", "-n", "300", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("workload -json output not JSON: %v\n%s", err, out)
	}
	if res.Workload == nil || res.Workload.PPS <= 0 || len(res.Workload.Queues) != 1 {
		t.Errorf("workload result = %+v", res.Workload)
	}
	if res.Workload.Latency.P999 < res.Workload.Latency.Median {
		t.Errorf("percentiles inverted: %+v", res.Workload.Latency)
	}
}

func TestWorkloadBenchErrors(t *testing.T) {
	cases := [][]string{
		{"-bench", "workload", "-sizes", "bogus"},
		{"-bench", "workload", "-arrival", "drizzle:1M"},
		{"-bench", "workload", "-nic", "exotic"},
		{"-bench", "workload", "-intrmod", "sometimes"},
		{"-bench", "workload", "-n", "0"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestRunRegisteredSweep(t *testing.T) {
	out, err := runCLI(t, "-run", "table2-ddio", "-format", "tsv", "n=50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warm") || !strings.Contains(out, "cold") {
		t.Errorf("-run output:\n%s", out)
	}
}

func TestSpecFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{
		"name": "bench-cli-test",
		"axes": [{"name": "transfer", "values": ["8"]}],
		"base": {"system": "NFP6000-HSW", "bench": "lat_rd",
		         "window": "4K", "buffer": "64K", "nojitter": "true", "n": "40"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-spec", good); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-spec", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestBadArguments(t *testing.T) {
	cases := [][]string{
		{"-bogus-flag"},
		{"-bench", "bw_up", "-n", "10"},
		{"-pattern", "zigzag"},
		{"-cache", "lukewarm"},
		{"-window", "huge"},
		{"-system", "PDP-11"},
		{"-run", "no-such-sweep"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestListSystemsTable(t *testing.T) {
	out, err := runCLI(t, "-list-systems")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SYSTEM", "CPU", "ADAPTER", "LINK", "NFP6000-HSW", "Gen3 x8"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list-systems missing %q:\n%s", want, out)
		}
	}
}

func TestP2PBench(t *testing.T) {
	out, err := runCLI(t, "-bench", "p2p", "-transfer", "256", "-n", "60")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "P2P direct") || !strings.Contains(out, "Gb/s") {
		t.Errorf("p2p output malformed:\n%s", out)
	}
	out, err = runCLI(t, "-bench", "p2p", "-p2p", "bounce", "-transfer", "256", "-n", "60", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("p2p -json not JSON: %v\n%s", err, out)
	}
	if res.P2P == nil || res.P2P.Mode != "bounce" || res.P2P.Gbps <= 0 {
		t.Errorf("p2p -json payload malformed: %+v", res.P2P)
	}
}

func TestMultiEndpointWorkload(t *testing.T) {
	out, err := runCLI(t, "-bench", "workload", "-endpoints", "2", "-switch", "gen3x8", "-n", "200")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WORKLOAD", "ep0", "ep1", "uplink arb wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-endpoint workload output missing %q:\n%s", want, out)
		}
	}
	out, err = runCLI(t, "-bench", "workload", "-endpoints", "2", "-switch", "on", "-n", "200", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json not JSON: %v\n%s", err, out)
	}
	if res.WorkloadMulti == nil || len(res.WorkloadMulti.Endpoints) != 2 {
		t.Errorf("workload_multi payload malformed: %+v", res.WorkloadMulti)
	}
}

func TestTopologyFlagErrors(t *testing.T) {
	if _, err := runCLI(t, "-bench", "bw_rd", "-endpoints", "2", "-switch", "on"); err == nil {
		t.Error("topology flags on bw_rd accepted")
	}
	if _, err := runCLI(t, "-bench", "workload", "-switch", "gen9x9", "-n", "50"); err == nil {
		t.Error("bad switch selector accepted")
	}
	if _, err := runCLI(t, "-bench", "p2p", "-p2p", "sideways", "-n", "50"); err == nil {
		t.Error("bad p2p mode accepted")
	}
}

// TestFaultFlags drives the -ber/-cto/-retrain CLI surface: a faulty
// workload run prints per-endpoint AER-style counter lines, a
// zero-fault run prints none, and bad values error before any
// simulation runs.
func TestFaultFlags(t *testing.T) {
	out, err := runCLI(t, "-system", "NFP6000-BDW", "-bench", "workload",
		"-endpoints", "2", "-switch", "gen3x8", "-nojitter",
		"-ber", "1e-5", "-retrain", "100us", "-n", "400")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "faults:") || !strings.Contains(out, "replays") {
		t.Errorf("faulty run missing counter lines:\n%s", out)
	}

	clean, err := runCLI(t, "-system", "NFP6000-BDW", "-bench", "workload",
		"-endpoints", "2", "-switch", "gen3x8", "-nojitter", "-n", "400")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean, "faults:") {
		t.Errorf("fault-free run printed counters:\n%s", clean)
	}

	// A generous CTO on a micro bench prints engine counters.
	out, err = runCLI(t, "-bench", "lat_rd", "-cto", "1ms", "-n", "200")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "faults:") {
		t.Errorf("CTO run missing counter line:\n%s", out)
	}

	for _, bad := range [][]string{
		{"-ber", "2"},
		{"-cto", "soon"},
		{"-retrain", "-5us"},
	} {
		if _, err := runCLI(t, append([]string{"-bench", "lat_rd", "-n", "100"}, bad...)...); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}
