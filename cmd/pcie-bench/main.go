// Command pcie-bench runs individual pcie-bench micro-benchmarks
// against a simulated system from the paper's Table 1, mirroring the
// control programs of paper §5.4.
//
// Examples:
//
//	pcie-bench -list
//	pcie-bench -system NFP6000-HSW -bench lat_rd -transfer 64 -cache warm
//	pcie-bench -system NFP6000-BDW -bench bw_rd -transfer 64 -window 16M -iommu
//	pcie-bench -system NFP6000-HSW-E3 -bench lat_rd -n 100000 -cdf
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
)

func parseSize(s string) (int, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func main() {
	var (
		list     = flag.Bool("list", false, "list systems and exit")
		system   = flag.String("system", "NFP6000-HSW", "system under test (see -list)")
		benchSel = flag.String("bench", "lat_rd", "lat_rd|lat_wrrd|bw_rd|bw_wr|bw_rdwr")
		window   = flag.String("window", "8K", "window size (supports K/M/G suffixes)")
		transfer = flag.Int("transfer", 64, "transfer size in bytes")
		offset   = flag.Int("offset", 0, "offset from cache line start")
		pattern  = flag.String("pattern", "rand", "rand|seq")
		cache    = flag.String("cache", "warm", "cold|warm|devwarm")
		n        = flag.Int("n", 10000, "measured transactions")
		node     = flag.Int("node", 0, "NUMA node for the host buffer")
		iommuOn  = flag.Bool("iommu", false, "enable the IOMMU (4KB mappings)")
		sp       = flag.Bool("sp", false, "use superpage IOMMU mappings")
		direct   = flag.Bool("direct", false, "use the device's direct command interface")
		seed     = flag.Int64("seed", 1, "simulation seed")
		cdf      = flag.Bool("cdf", false, "print the latency CDF (latency benches)")
		suite    = flag.Bool("suite", false, "run the full ~2000-test matrix (paper §5.4) and print a TSV report")
	)
	flag.Parse()

	if *list {
		for _, s := range sysconf.Systems() {
			fmt.Printf("%-16s %-28s %-12s %s\n", s.Name, s.CPU, s.Arch, s.Adapter)
		}
		return
	}

	if *suite {
		sys, err := sysconf.ByName(*system)
		if err != nil {
			fatal(err)
		}
		inst, err := sys.Build(sysconf.Options{Seed: *seed, IOMMU: *iommuOn, SuperPages: *sp})
		if err != nil {
			fatal(err)
		}
		cfg := bench.DefaultSuite()
		results, err := bench.RunSuite(inst.Target(), cfg, func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
			}
		})
		fmt.Fprintln(os.Stderr)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderSuite(results))
		return
	}

	sys, err := sysconf.ByName(*system)
	if err != nil {
		fatal(err)
	}
	win, err := parseSize(*window)
	if err != nil {
		fatal(err)
	}
	inst, err := sys.Build(sysconf.Options{
		Seed:       *seed,
		IOMMU:      *iommuOn,
		SuperPages: *sp,
		BufferNode: *node,
	})
	if err != nil {
		fatal(err)
	}

	p := bench.Params{
		WindowSize:   win,
		TransferSize: *transfer,
		Offset:       *offset,
		Transactions: *n,
		Direct:       *direct,
	}
	switch *pattern {
	case "seq":
		p.Pattern = bench.Sequential
	case "rand":
		p.Pattern = bench.Random
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}
	switch *cache {
	case "cold":
		p.Cache = bench.Cold
	case "warm":
		p.Cache = bench.HostWarm
	case "devwarm":
		p.Cache = bench.DeviceWarm
	default:
		fatal(fmt.Errorf("unknown cache state %q", *cache))
	}

	tgt := inst.Target()
	fmt.Printf("# %s on %s (%s): %s\n", *benchSel, sys.Name, sys.Adapter, p)
	switch *benchSel {
	case "lat_rd", "lat_wrrd":
		run := bench.LatRd
		if *benchSel == "lat_wrrd" {
			run = bench.LatWrRd
		}
		res, err := run(tgt, p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s %s\n", res.Name, res.Summary)
		if *cdf {
			c, err := res.CDF()
			if err != nil {
				fatal(err)
			}
			fmt.Print(c.TSV())
		}
	case "bw_rd", "bw_wr", "bw_rdwr":
		run := bench.BwRd
		switch *benchSel {
		case "bw_wr":
			run = bench.BwWr
		case "bw_rdwr":
			run = bench.BwRdWr
		}
		res, err := run(tgt, p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s %.3f Gb/s  %.2fM txn/s  elapsed %v\n",
			res.Name, res.Gbps, res.TxnPerSec/1e6, res.Elapsed)
	default:
		fatal(fmt.Errorf("unknown benchmark %q", *benchSel))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcie-bench:", err)
	os.Exit(1)
}
