// Command pcie-bench runs individual pcie-bench micro-benchmarks
// against a simulated system from the paper's Table 1, mirroring the
// control programs of paper §5.4, and exposes the declarative sweep
// engine for whole parameter grids.
//
// Examples:
//
//	pcie-bench -list
//	pcie-bench -system NFP6000-HSW -bench lat_rd -transfer 64 -cache warm
//	pcie-bench -system NFP6000-BDW -bench bw_rd -transfer 64 -window 16M -iommu
//	pcie-bench -system NFP6000-HSW-E3 -bench lat_rd -n 100000 -cdf
//	pcie-bench -system NFP6000-HSW -bench bw_rdwr -json
//	pcie-bench -bench workload -queues 4 -sizes imix -arrival poisson:4M:burst=64
//	pcie-bench -suite -parallel 8
//	pcie-bench -sweeps
//	pcie-bench -run fig9 transfer=64 mps=512
//	pcie-bench -spec my-grid.json -format json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pciebench/internal/bench"
	"pciebench/internal/fault"
	"pciebench/internal/pcie"
	_ "pciebench/internal/report" // registers the paper-figure sweeps
	"pciebench/internal/stats"
	"pciebench/internal/sweep"
	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcie-bench:", err)
		os.Exit(1)
	}
}

// benchResult is the machine-readable form of one benchmark run
// (-json output).
type benchResult struct {
	Bench   string `json:"bench"`
	System  string `json:"system"`
	Adapter string `json:"adapter"`
	Params  string `json:"params"`
	// Latency benchmarks fill Latency; bandwidth benchmarks fill
	// Gbps/TxnPerSec; the workload engine fills Workload.
	Latency   *stats.Summary   `json:"latency_ns,omitempty"`
	Gbps      float64          `json:"gbps,omitempty"`
	TxnPerSec float64          `json:"txn_per_sec,omitempty"`
	Workload  *workload.Result `json:"workload,omitempty"`
	// Multi-endpoint topology runs fill WorkloadMulti or P2P instead.
	WorkloadMulti *workload.MultiResult `json:"workload_multi,omitempty"`
	P2P           *topo.P2PResult       `json:"p2p,omitempty"`
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcie-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file when the run finishes")
		list       = fs.Bool("list", false, "list systems and exit")
		listSys    = fs.Bool("list-systems", false, "list the Table-1 systems (name, CPU, adapter, link) and exit")
		system     = fs.String("system", "NFP6000-HSW", "system under test (see -list)")
		benchSel   = fs.String("bench", "lat_rd", "lat_rd|lat_wrrd|bw_rd|bw_wr|bw_rdwr|workload|p2p")
		window     = fs.String("window", "8K", "window size (supports K/M/G suffixes)")
		transfer   = fs.Int("transfer", 64, "transfer size in bytes")
		offset     = fs.Int("offset", 0, "offset from cache line start")
		pattern    = fs.String("pattern", "rand", "rand|seq")
		cache      = fs.String("cache", "warm", "cold|warm|devwarm")
		n          = fs.Int("n", 10000, "measured transactions")
		node       = fs.Int("node", 0, "NUMA node for the host buffer")
		iommuOn    = fs.Bool("iommu", false, "enable the IOMMU (4KB mappings)")
		iommuScope = fs.String("iommu-scope", "", "IOMMU translation-unit scope: global (default) or per-socket")
		sp         = fs.Bool("sp", false, "use superpage IOMMU mappings")
		direct     = fs.Bool("direct", false, "use the device's direct command interface")
		seed       = fs.Int64("seed", 1, "simulation seed")
		cdf        = fs.Bool("cdf", false, "print the latency CDF (latency benches)")
		jsonOut    = fs.Bool("json", false, "print the benchmark result as JSON")
		suite      = fs.Bool("suite", false, "run the full ~2000-test matrix (paper §5.4) and print a TSV report")
		parallel   = fs.Int("parallel", 0, "suite/sweep worker count (0 = GOMAXPROCS); the report is identical for any value")
		sweeps     = fs.Bool("sweeps", false, "list registered sweeps and exit")
		runName    = fs.String("run", "", "run one registered sweep; remaining args override axes (e.g. gen=4,5 lanes=16)")
		specPath   = fs.String("spec", "", "run a custom sweep from a JSON spec file; remaining args override axes")
		format     = fs.String("format", "table", "sweep output format: "+strings.Join(sweep.Formats(), "|"))
		full       = fs.Bool("full", false, "paper-scale sample counts for sweeps (slower)")
		cacheDir   = fs.String("cache-dir", "", "dedup sweep cells against an on-disk result cache in this directory")

		// Traffic-engine knobs (-bench workload).
		queues   = fs.Int("queues", 1, "workload: RX/TX queue pairs")
		flows    = fs.Int("flows", workload.DefaultFlows, "workload: simulated flow population spread over the queues")
		inflight = fs.Int("inflight", workload.DefaultWindow, "workload: per-queue in-flight packet-pair window")
		sizes    = fs.String("sizes", "1500", "workload: frame sizes (a size, imix, uniform:lo-hi or hist:size=weight,...)")
		arrival  = fs.String("arrival", "saturate", "workload: arrivals (saturate, rate:<pps> or poisson:<pps>[:burst=<n>])")
		nicSel   = fs.String("nic", "kernel", "workload: NIC/driver design (simple|kernel|dpdk)")
		intrmod  = fs.String("intrmod", "", "workload: interrupt moderation (packets per interrupt, or poll)")
		doorbell = fs.Int("doorbell", 0, "workload: doorbell batch override (0 = design default)")

		// Topology knobs (-bench workload / -bench p2p).
		endpoints = fs.Int("endpoints", 1, "topology: endpoint (NIC) count")
		swSel     = fs.String("switch", "", "topology: shared switch uplink (none, on, or gen<G>x<L>)")
		socketSel = fs.String("socket", "", "topology: endpoint placement (socket index or split)")
		localBuf  = fs.Bool("local-buffers", false, "topology: home each endpoint's DMA buffer on its own socket's NUMA node")
		noJitter  = fs.Bool("nojitter", false, "disable root-complex latency jitter")
		simPar    = fs.Int("sim-parallel", 1, "simulation workers "+sweep.SimWorkersRange()+" for partitionable multi-endpoint fabrics (1 = serial; results are byte-identical for any value)")
		p2pMode   = fs.String("p2p", "direct", "p2p: transfer path (direct or bounce)")

		// Fault-injection knobs (internal/fault); all off by default.
		berRate    = fs.Float64("ber", 0, "fault injection: per-bit link error rate driving LCRC corruption and replay (0 = off)")
		ctoFlag    = fs.String("cto", "", "fault injection: DMA read completion timeout, e.g. 10us (empty = off)")
		retrainSel = fs.String("retrain", "", "fault injection: mean time between link retrain events, e.g. 1ms (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := sweep.ValidateSimWorkers(*simPar); err != nil {
		return err
	}

	// Profiling wraps every mode — single benches, the suite and the
	// sweep engine — so perf work needs no code edits, just flags.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "pcie-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "pcie-bench: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, s := range sysconf.Systems() {
			fmt.Fprintf(stdout, "%-16s %-28s %-12s %s\n", s.Name, s.CPU, s.Arch, s.Adapter)
		}
		return nil
	}

	if *listSys {
		// Every Table-1 system negotiated the paper's Gen3 x8 link; the
		// column shows that default (overridable per run with
		// -run/-spec gen/lanes axes or sysconf.Options.Link).
		link := pcie.DefaultGen3x8()
		fmt.Fprintf(stdout, "%-16s %-28s %-16s %s\n", "SYSTEM", "CPU", "ADAPTER", "LINK (default)")
		for _, s := range sysconf.Systems() {
			fmt.Fprintf(stdout, "%-16s %-28s %-16s %s\n", s.Name, s.CPU, s.Adapter, link)
		}
		return nil
	}

	q := sweep.Quick
	if *full {
		q = sweep.Full
	}
	cli := &sweep.CLI{
		List: *sweeps, RunName: *runName, SpecPath: *specPath,
		Overrides: fs.Args(), Format: *format,
		Workers: *parallel, SimWorkers: *simPar, Quality: q, CacheDir: *cacheDir,
	}
	if cli.Active() {
		return cli.Execute(context.Background(), stdout, stderr)
	}

	if *suite {
		sys, err := sysconf.ByName(*system)
		if err != nil {
			return err
		}
		// Every suite cell builds its own instance from a seed derived
		// from -seed and the cell index, so the matrix fans out across
		// the worker pool with a report that is byte-identical for any
		// -parallel value. (Per-cell seeding means suite numbers are
		// not comparable with reports generated by the old shared-
		// instance sequential runner, only with other parallel runs.)
		factory := func(seed int64) (*bench.Target, error) {
			inst, err := sys.Build(sysconf.Options{Seed: seed, IOMMU: *iommuOn, IOMMUScope: *iommuScope, SuperPages: *sp})
			if err != nil {
				return nil, err
			}
			return inst.Target(), nil
		}
		cfg := bench.DefaultSuite()
		results, err := bench.RunSuiteParallel(context.Background(), factory, cfg, bench.SuiteOptions{
			Workers: *parallel,
			Seed:    *seed,
			Progress: func(done, total int) {
				if done%100 == 0 || done == total {
					fmt.Fprintf(stderr, "\r%d/%d", done, total)
				}
			},
		})
		fmt.Fprintln(stderr)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, bench.RenderSuite(results))
		return nil
	}

	sys, err := sysconf.ByName(*system)
	if err != nil {
		return err
	}
	faults, err := faultConfig(*berRate, *ctoFlag, *retrainSel)
	if err != nil {
		return err
	}
	opts := sysconf.Options{
		Seed:       *seed,
		IOMMU:      *iommuOn,
		IOMMUScope: *iommuScope,
		SuperPages: *sp,
		BufferNode: *node,
		NoJitter:   *noJitter,
		SimWorkers: *simPar,
		Faults:     faults,
	}
	shape := topo.Shape{Endpoints: *endpoints, Placement: *socketSel, LocalBuffers: *localBuf}
	if *swSel != "" {
		shape.Switch, err = topo.ParseSwitch(*swSel)
		if err != nil {
			return err
		}
	}
	if !shape.Degenerate() && *benchSel != "workload" && *benchSel != "p2p" {
		return fmt.Errorf("topology flags (-endpoints/-switch/-socket/-local-buffers) apply to -bench workload or -bench p2p")
	}

	if *benchSel == "p2p" {
		// Peer-to-peer traffic crosses simulation domains, so p2p always
		// builds serially (matching the sweep engine's policy).
		opts.SimWorkers = 1
		endpointsSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "endpoints" {
				endpointsSet = true
			}
		})
		if shape.Endpoints < 2 {
			if endpointsSet {
				return fmt.Errorf("-bench p2p needs -endpoints >= 2, got %d", shape.Endpoints)
			}
			shape.Endpoints = 2
		}
		// Default to a shared switch, except under split placement
		// (which requires direct attachment to both sockets).
		if shape.Switch == nil && *swSel == "" && *socketSel != "split" {
			l := pcie.DefaultGen3x8()
			shape.Switch = &l
		}
		fab, err := sys.Fabric(shape, opts)
		if err != nil {
			return err
		}
		for _, sw := range fab.Switches {
			sw.EnableWaitSampling()
		}
		res, err := topo.RunP2P(fab, *p2pMode, *transfer, *n)
		if err != nil {
			return err
		}
		if *jsonOut {
			out := benchResult{
				Bench: "p2p", System: sys.Name, Adapter: sys.Adapter.String(),
				Params: fmt.Sprintf("mode=%s transfer=%d endpoints=%d n=%d", res.Mode, res.Transfer, shape.Count(), *n),
				P2P:    res,
			}
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		}
		fmt.Fprintf(stdout, "# p2p on %s (%s): mode=%s transfer=%d endpoints=%d n=%d\n",
			sys.Name, sys.Adapter, res.Mode, res.Transfer, shape.Count(), *n)
		fmt.Fprintf(stdout, "P2P %s  p50 %.0fns  p99 %.0fns  %.3f Gb/s\n",
			res.Mode, res.Latency.Median, res.Latency.P99, res.Gbps)
		if res.UplinkWait != nil {
			fmt.Fprintf(stdout, "  uplink arb wait: p50 %.0fns  p99 %.0fns  max %.0fns\n",
				res.UplinkWait.Median, res.UplinkWait.P99, res.UplinkWait.Max)
		}
		return nil
	}

	win, err := sweep.ParseSize(*window)
	if err != nil {
		return err
	}
	// Multi-endpoint workload runs build their own Fabric below; only
	// degenerate shapes need the single-endpoint instance.
	var inst *sysconf.Instance
	if shape.Degenerate() {
		inst, err = sys.Build(opts)
		if err != nil {
			return err
		}
	}

	p := bench.Params{
		WindowSize:   win,
		TransferSize: *transfer,
		Offset:       *offset,
		Transactions: *n,
		Direct:       *direct,
	}
	switch *pattern {
	case "seq":
		p.Pattern = bench.Sequential
	case "rand":
		p.Pattern = bench.Random
	default:
		return fmt.Errorf("unknown pattern %q", *pattern)
	}
	switch *cache {
	case "cold":
		p.Cache = bench.Cold
	case "warm":
		p.Cache = bench.HostWarm
	case "devwarm":
		p.Cache = bench.DeviceWarm
	default:
		return fmt.Errorf("unknown cache state %q", *cache)
	}

	var tgt *bench.Target
	if inst != nil {
		tgt = inst.Target()
	}
	out := benchResult{
		Bench: *benchSel, System: sys.Name,
		Adapter: sys.Adapter.String(), Params: p.String(),
	}
	if !*jsonOut && *benchSel != "workload" {
		fmt.Fprintf(stdout, "# %s on %s (%s): %s\n", *benchSel, sys.Name, sys.Adapter, p)
	}
	switch *benchSel {
	case "workload":
		dist, err := workload.ParseSizeDist(*sizes)
		if err != nil {
			return err
		}
		arr, err := workload.ParseArrival(*arrival)
		if err != nil {
			return err
		}
		design, err := workload.DesignByName(*nicSel)
		if err != nil {
			return err
		}
		mod := workload.Moderation{DoorbellBatch: *doorbell}
		switch *intrmod {
		case "":
		case "poll":
			mod.IntrEvery = -1
		default:
			v, err := strconv.Atoi(*intrmod)
			if err != nil || v < 1 {
				return fmt.Errorf("bad -intrmod %q (want a packet count or poll)", *intrmod)
			}
			mod.IntrEvery = v
		}
		cfg := workload.Config{
			Queues: *queues, Flows: *flows, Window: *inflight,
			Design: design, Sizes: dist, Arrival: arr,
			Moderation: mod, Seed: *seed,
		}.WithDefaults()
		out.Params = fmt.Sprintf("queues=%d flows=%d inflight=%d sizes=%s arrival=%s nic=%s n=%d",
			cfg.Queues, cfg.Flows, cfg.Window, dist, arr, *nicSel, *n)
		if !shape.Degenerate() {
			out.Params += fmt.Sprintf(" endpoints=%d", shape.Count())
			if shape.Switch != nil {
				out.Params += fmt.Sprintf(" switch=%s", *shape.Switch)
			}
			if !*jsonOut {
				fmt.Fprintf(stdout, "# workload on %s (%s): %s\n", sys.Name, sys.Adapter, out.Params)
			}
			fab, err := sys.Fabric(shape, opts)
			if err != nil {
				return err
			}
			cfg.BufferBytes = fab.Endpoints[0].Buffer.Size
			for _, sw := range fab.Switches {
				sw.EnableWaitSampling()
			}
			mres, err := topo.RunWorkload(fab, cfg, *n)
			if err != nil {
				return err
			}
			if *jsonOut {
				out.WorkloadMulti = mres
				break
			}
			fmt.Fprintf(stdout, "WORKLOAD %.3fM pps  %.3f Gb/s/dir  p50 %.0fns  p99 %.0fns  p99.9 %.0fns  elapsed %v\n",
				mres.PPS/1e6, mres.GbpsPerDirection, mres.Latency.Median, mres.Latency.P99, mres.Latency.P999, mres.Elapsed)
			for _, ep := range mres.Endpoints {
				fmt.Fprintf(stdout, "  ep%-2d %7d pairs  %8.3fM pps  %7.3f Gb/s  p50 %.0fns  p99 %.0fns\n",
					ep.Endpoint, ep.Pairs, ep.PPS/1e6, ep.GbpsPerDirection, ep.Latency.Median, ep.Latency.P99)
				if ep.Faults != nil {
					fmt.Fprintf(stdout, "       faults: %s\n", faultLine(ep.Faults))
				}
			}
			for _, sw := range fab.Switches {
				if ws, ok := sw.WaitSummary(true); ok {
					fmt.Fprintf(stdout, "  uplink arb wait: p50 %.0fns  p99 %.0fns  max %.0fns\n",
						ws.Median, ws.P99, ws.Max)
				}
			}
			break
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "# workload on %s (%s): %s\n", sys.Name, sys.Adapter, out.Params)
		}
		cfg.BufferBytes = inst.Buffer.Size
		inst.Buffer.WarmHost(0, cfg.Footprint())
		res, err := workload.Run(inst.Kernel, inst.RC, inst.Buffer.DMAAddr(0), cfg, *n)
		if err != nil {
			return err
		}
		if *jsonOut {
			out.Workload = res
			break
		}
		fmt.Fprintf(stdout, "WORKLOAD %.3fM pps  %.3f Gb/s/dir  p50 %.0fns  p99 %.0fns  p99.9 %.0fns  elapsed %v\n",
			res.PPS/1e6, res.GbpsPerDirection, res.Latency.Median, res.Latency.P99, res.Latency.P999, res.Elapsed)
		for _, q := range res.Queues {
			fmt.Fprintf(stdout, "  q%-3d %7d pairs  %8.3fM pps  %7.3f Gb/s  p50 %.0fns  p99 %.0fns\n",
				q.Queue, q.Pairs, q.PPS/1e6, q.Gbps, q.Latency.Median, q.Latency.P99)
		}
		if c := inst.Fabric.Endpoints[0].Faults; c != nil {
			fmt.Fprintf(stdout, "  faults: %s\n", faultLine(c))
		}
	case "lat_rd", "lat_wrrd":
		run := bench.LatRd
		if *benchSel == "lat_wrrd" {
			run = bench.LatWrRd
		}
		res, err := run(tgt, p)
		if err != nil {
			return err
		}
		if *jsonOut {
			out.Latency = &res.Summary
			break
		}
		fmt.Fprintf(stdout, "%s %s\n", res.Name, res.Summary)
		if *cdf {
			c, err := res.CDF()
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, c.TSV())
		}
	case "bw_rd", "bw_wr", "bw_rdwr":
		run := bench.BwRd
		switch *benchSel {
		case "bw_wr":
			run = bench.BwWr
		case "bw_rdwr":
			run = bench.BwRdWr
		}
		res, err := run(tgt, p)
		if err != nil {
			return err
		}
		if *jsonOut {
			out.Gbps = res.Gbps
			out.TxnPerSec = res.TxnPerSec
			break
		}
		fmt.Fprintf(stdout, "%s %.3f Gb/s  %.2fM txn/s  elapsed %v\n",
			res.Name, res.Gbps, res.TxnPerSec/1e6, res.Elapsed)
	default:
		return fmt.Errorf("unknown benchmark %q", *benchSel)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	// The micro benches drive the engine's completion-timeout model;
	// report the endpoint's counters whenever faults are armed.
	if *benchSel != "workload" && inst != nil && len(inst.Fabric.Endpoints) > 0 {
		if c := inst.Fabric.Endpoints[0].Faults; c != nil {
			fmt.Fprintf(stdout, "  faults: %s\n", faultLine(c))
		}
	}
	return nil
}

// faultConfig assembles the fault-injection options from the CLI
// flags; nil (fault-free) when every knob is off.
func faultConfig(ber float64, cto, retrain string) (*fault.Config, error) {
	fc := &fault.Config{BER: ber}
	var err error
	if cto != "" {
		if fc.CTO, err = sweep.ParseDuration(cto); err != nil {
			return nil, fmt.Errorf("-cto: %w", err)
		}
	}
	if retrain != "" {
		if fc.RetrainMTBF, err = sweep.ParseDuration(retrain); err != nil {
			return nil, fmt.Errorf("-retrain: %w", err)
		}
	}
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	if !fc.Enabled() {
		return nil, nil
	}
	return fc, nil
}

// faultLine renders one endpoint's fault counters for the text
// reports.
func faultLine(c *fault.Counters) string {
	return fmt.Sprintf("replays %d  timeouts %d  retrains %d  (correctable %d  non-fatal %d  fatal %d)",
		c.Replays, c.Timeouts, c.Retrains, c.Correctable, c.NonFatal, c.Fatal)
}
