// Package pciebench's top-level benchmarks regenerate each table and
// figure of the paper's evaluation as a testing.B target, reporting the
// headline metric of the artifact via b.ReportMetric. The per-experiment
// index in DESIGN.md maps every benchmark to its figure.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package pciebench

import (
	"testing"

	"pciebench/internal/bench"
	"pciebench/internal/iommu"
	"pciebench/internal/mem"
	"pciebench/internal/model"
	"pciebench/internal/nicsim"
	"pciebench/internal/pcie"
	"pciebench/internal/report"
	"pciebench/internal/sim"
	"pciebench/internal/sysconf"
	"pciebench/internal/tlp"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

// mustBuild assembles a system or fails the benchmark.
func mustBuild(b *testing.B, name string, opt sysconf.Options) *sysconf.Instance {
	b.Helper()
	sys, err := sysconf.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := sys.Build(opt)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkFig1_NICModels evaluates the analytical Figure 1 curves
// (effective PCIe bandwidth and the three NIC/driver designs) across
// the full transfer-size sweep.
func BenchmarkFig1_NICModels(b *testing.B) {
	cfg := pcie.DefaultGen3x8()
	designs := []model.NIC{model.SimpleNIC(), model.ModernNICKernel(), model.ModernNICDPDK()}
	var last float64
	for i := 0; i < b.N; i++ {
		for sz := 64; sz <= 1520; sz += 16 {
			last = model.EffectiveBidirBandwidth(cfg, sz)
			for _, d := range designs {
				last += d.Bandwidth(cfg, sz)
			}
		}
	}
	b.ReportMetric(model.EffectiveBidirBandwidth(cfg, 1520)/1e9, "Gb/s@1520")
	_ = last
}

// BenchmarkFig2_LoopbackLatency measures the ExaNIC-style loopback
// round trip for 128B frames and reports the median and PCIe share.
func BenchmarkFig2_LoopbackLatency(b *testing.B) {
	inst := mustBuild(b, "NFP6000-HSW", sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
	inst.Buffer.WarmHost(0, 64<<10)
	var med sim.Time
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, err := nicsim.Loopback(inst.RC, nicsim.DefaultLoopback(), inst.Buffer.DMAAddr(0), 128, 16)
		if err != nil {
			b.Fatal(err)
		}
		med, frac = nicsim.MedianLoopback(samples)
	}
	b.ReportMetric(med.Nanoseconds(), "ns/roundtrip")
	b.ReportMetric(frac*100, "%PCIe")
}

// BenchmarkTable1_Systems assembles all six Table 1 systems.
func BenchmarkTable1_Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range sysconf.Systems() {
			if _, err := s.Build(sysconf.Options{BufferSize: 1 << 20}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(sysconf.Systems())), "systems")
}

// benchBandwidth runs one Figure 4 bandwidth point per iteration.
func benchBandwidth(b *testing.B, run func(*bench.Target, bench.Params) (*bench.BandwidthResult, error), sz int) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		inst := mustBuild(b, "NFP6000-HSW", sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
		res, err := run(inst.Target(), bench.Params{
			WindowSize: 8 << 10, TransferSize: sz,
			Cache: bench.HostWarm, Transactions: 20000,
		})
		if err != nil {
			b.Fatal(err)
		}
		gbps = res.Gbps
	}
	b.ReportMetric(gbps, "Gb/s")
}

// BenchmarkFig4a_ReadBandwidth regenerates the 64B BW_RD point of
// Figure 4a (paper: ~30 Gb/s on NFP6000-HSW).
func BenchmarkFig4a_ReadBandwidth(b *testing.B) { benchBandwidth(b, bench.BwRd, 64) }

// BenchmarkFig4b_WriteBandwidth regenerates the 64B BW_WR point of
// Figure 4b.
func BenchmarkFig4b_WriteBandwidth(b *testing.B) { benchBandwidth(b, bench.BwWr, 64) }

// BenchmarkFig4c_ReadWriteBandwidth regenerates the 512B BW_RDWR point
// of Figure 4c.
func BenchmarkFig4c_ReadWriteBandwidth(b *testing.B) { benchBandwidth(b, bench.BwRdWr, 512) }

// BenchmarkFig5_LatencyVsSize regenerates the Figure 5 median LAT_RD
// at 64B and 2048B on the NFP, reporting both.
func BenchmarkFig5_LatencyVsSize(b *testing.B) {
	var m64, m2048 float64
	for i := 0; i < b.N; i++ {
		for _, sz := range []int{64, 2048} {
			inst := mustBuild(b, "NFP6000-HSW", sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
			res, err := bench.LatRd(inst.Target(), bench.Params{
				WindowSize: 8 << 10, TransferSize: sz,
				Cache: bench.HostWarm, Transactions: 2000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if sz == 64 {
				m64 = res.Summary.Median
			} else {
				m2048 = res.Summary.Median
			}
		}
	}
	b.ReportMetric(m64, "ns@64B")
	b.ReportMetric(m2048, "ns@2048B")
}

// BenchmarkFig6_LatencyCDF regenerates the Figure 6 E3 tail and
// reports its median and p99.
func BenchmarkFig6_LatencyCDF(b *testing.B) {
	var med, p99 float64
	for i := 0; i < b.N; i++ {
		inst := mustBuild(b, "NFP6000-HSW-E3", sysconf.Options{BufferSize: 1 << 20, Seed: 17})
		res, err := bench.LatRd(inst.Target(), bench.Params{
			WindowSize: 8 << 10, TransferSize: 64,
			Cache: bench.HostWarm, Transactions: 20000,
		})
		if err != nil {
			b.Fatal(err)
		}
		med, p99 = res.Summary.Median, res.Summary.P99
	}
	b.ReportMetric(med, "ns-median")
	b.ReportMetric(p99, "ns-p99")
}

// BenchmarkFig7a_CacheLatency regenerates the Figure 7a warm-vs-cold
// 8B read latency delta inside the LLC.
func BenchmarkFig7a_CacheLatency(b *testing.B) {
	var warm, cold float64
	for i := 0; i < b.N; i++ {
		for _, cache := range []bench.CacheState{bench.HostWarm, bench.Cold} {
			inst := mustBuild(b, "NFP6000-SNB", sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
			res, err := bench.LatRd(inst.Target(), bench.Params{
				WindowSize: 64 << 10, TransferSize: 8, Direct: true,
				Cache: cache, Transactions: 2000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if cache == bench.HostWarm {
				warm = res.Summary.Median
			} else {
				cold = res.Summary.Median
			}
		}
	}
	b.ReportMetric(cold-warm, "ns-warm-benefit")
}

// BenchmarkFig7b_CacheBandwidth regenerates the Figure 7b 64B warm/cold
// read-bandwidth pair inside the LLC.
func BenchmarkFig7b_CacheBandwidth(b *testing.B) {
	var warm, cold float64
	for i := 0; i < b.N; i++ {
		for _, cache := range []bench.CacheState{bench.HostWarm, bench.Cold} {
			inst := mustBuild(b, "NFP6000-SNB", sysconf.Options{BufferSize: 4 << 20, NoJitter: true})
			res, err := bench.BwRd(inst.Target(), bench.Params{
				WindowSize: 1 << 20, TransferSize: 64,
				Cache: cache, Transactions: 20000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if cache == bench.HostWarm {
				warm = res.Gbps
			} else {
				cold = res.Gbps
			}
		}
	}
	b.ReportMetric(warm, "Gb/s-warm")
	b.ReportMetric(cold, "Gb/s-cold")
}

// BenchmarkFig8_NUMA regenerates the Figure 8 64B local-vs-remote
// bandwidth comparison inside the cache window.
func BenchmarkFig8_NUMA(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		run := func(node int) float64 {
			inst := mustBuild(b, "NFP6000-BDW", sysconf.Options{NoJitter: true, BufferNode: node})
			res, err := bench.BwRd(inst.Target(), bench.Params{
				WindowSize: 64 << 10, TransferSize: 64,
				Cache: bench.HostWarm, Transactions: 20000,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Gbps
		}
		local, remote := run(0), run(1)
		pct = 100 * (remote - local) / local
	}
	b.ReportMetric(pct, "%remote-penalty")
}

// BenchmarkFig9_IOMMU regenerates the Figure 9 64B IOMMU cliff: the
// bandwidth change beyond the IO-TLB reach.
func BenchmarkFig9_IOMMU(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		run := func(on bool) float64 {
			inst := mustBuild(b, "NFP6000-BDW", sysconf.Options{NoJitter: true, IOMMU: on})
			res, err := bench.BwRd(inst.Target(), bench.Params{
				WindowSize: 16 << 20, TransferSize: 64,
				Cache: bench.HostWarm, Transactions: 20000,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Gbps
		}
		off, on := run(false), run(true)
		pct = 100 * (on - off) / off
	}
	b.ReportMetric(pct, "%iommu-change")
}

// BenchmarkTable2_Findings derives the Table 2 findings end to end.
func BenchmarkTable2_Findings(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := report.Table2(report.Quick)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "findings")
}

// ---- Ablation benchmarks: the design choices DESIGN.md calls out ----

// BenchmarkAblation_MPS quantifies how the negotiated Maximum Payload
// Size changes effective bidirectional bandwidth at 1500B.
func BenchmarkAblation_MPS(b *testing.B) {
	var out []float64
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, mps := range []int{128, 256, 512} {
			cfg := pcie.DefaultGen3x8()
			cfg.MPS = mps
			out = append(out, model.EffectiveBidirBandwidth(cfg, 1500)/1e9)
		}
	}
	b.ReportMetric(out[0], "Gb/s-mps128")
	b.ReportMetric(out[2], "Gb/s-mps512")
}

// BenchmarkAblation_LinkGeneration projects the paper's headline
// numbers onto Gen4 (the "once hardware is available" note in §6).
func BenchmarkAblation_LinkGeneration(b *testing.B) {
	var g3, g4 float64
	for i := 0; i < b.N; i++ {
		cfg := pcie.DefaultGen3x8()
		g3 = model.EffectiveBidirBandwidth(cfg, 1500) / 1e9
		cfg.Gen = pcie.Gen4
		g4 = model.EffectiveBidirBandwidth(cfg, 1500) / 1e9
	}
	b.ReportMetric(g3, "Gb/s-gen3")
	b.ReportMetric(g4, "Gb/s-gen4")
}

// BenchmarkAblation_IOMMUWalkers shows how the page-walker pool size
// (the Fig 9 mechanism) moves the 64B post-cliff bandwidth.
func BenchmarkAblation_IOMMUWalkers(b *testing.B) {
	var w1, w6 float64
	for i := 0; i < b.N; i++ {
		run := func(walkers int) float64 {
			cfg := iommu.DefaultConfig()
			cfg.Walkers = walkers
			inst := mustBuild(b, "NFP6000-BDW", sysconf.Options{
				NoJitter: true, IOMMU: true, IOMMUConfig: &cfg,
			})
			res, err := bench.BwRd(inst.Target(), bench.Params{
				WindowSize: 16 << 20, TransferSize: 64,
				Cache: bench.HostWarm, Transactions: 10000,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Gbps
		}
		w1, w6 = run(1), run(6)
	}
	b.ReportMetric(w1, "Gb/s-1walker")
	b.ReportMetric(w6, "Gb/s-6walkers")
}

// BenchmarkAblation_DDIOWays varies the DDIO allocation quota and
// reports the cold 8B write+read latency beyond the default region.
func BenchmarkAblation_DDIOWays(b *testing.B) {
	var narrow, wide float64
	for i := 0; i < b.N; i++ {
		run := func(ways int) float64 {
			sys, err := sysconf.ByName("NFP6000-SNB")
			if err != nil {
				b.Fatal(err)
			}
			sys.DDIOWays = ways
			inst, err := sys.Build(sysconf.Options{NoJitter: true})
			if err != nil {
				b.Fatal(err)
			}
			res, err := bench.LatWrRd(inst.Target(), bench.Params{
				WindowSize: 4 << 20, TransferSize: 8, Direct: true,
				Cache: bench.Cold, Transactions: 2000,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Summary.Median
		}
		narrow, wide = run(2), run(16)
	}
	b.ReportMetric(narrow, "ns-2ways")
	b.ReportMetric(wide, "ns-16ways")
}

// ---- Traffic-engine benchmarks (internal/workload) ----

// benchWorkload drives one traffic-engine scenario per iteration and
// reports the aggregate packet rate and the p99.9 completion latency.
func benchWorkload(b *testing.B, cfg workload.Config, pairs int) {
	var pps, p999 float64
	for i := 0; i < b.N; i++ {
		inst := mustBuild(b, "NFP6000-HSW", sysconf.Options{BufferSize: 4 << 20, NoJitter: true})
		inst.Buffer.WarmHost(0, cfg.Footprint())
		res, err := workload.Run(inst.Kernel, inst.RC, inst.Buffer.DMAAddr(0), cfg, pairs)
		if err != nil {
			b.Fatal(err)
		}
		pps, p999 = res.PPS, res.Latency.P999
	}
	b.ReportMetric(pps/1e6, "Mpps")
	b.ReportMetric(p999, "ns-p99.9")
}

// BenchmarkWorkload_MultiQueueIMIX saturates four queue pairs with
// IMIX traffic under the kernel-driver design.
func BenchmarkWorkload_MultiQueueIMIX(b *testing.B) {
	benchWorkload(b, workload.Config{
		Queues: 4, Window: 16, Sizes: workload.IMIX(), Seed: 37,
	}, 4000)
}

// BenchmarkWorkload_PoissonBursts offers 4Mpps of IMIX in 64-packet
// Poisson bursts across four queues: the open-loop path with software
// queueing, where the latency tail lives.
func BenchmarkWorkload_PoissonBursts(b *testing.B) {
	arr, err := workload.Poisson(4e6, 64)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkload(b, workload.Config{
		Queues: 4, Window: 8, Sizes: workload.IMIX(), Arrival: arr, Seed: 37,
	}, 4000)
}

// ---- Topology benchmarks (internal/topo) ----

// BenchmarkTopo_Contend4 saturates four NICs behind one Gen3 x8 switch
// uplink and reports the aggregate rate and the p99 inflation of
// sharing the link.
func BenchmarkTopo_Contend4(b *testing.B) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		b.Fatal(err)
	}
	uplink := pcie.DefaultGen3x8()
	var pps, p99 float64
	for i := 0; i < b.N; i++ {
		fab, err := sys.Fabric(topo.Shape{Endpoints: 4, Switch: &uplink},
			sysconf.Options{BufferSize: 4 << 20, NoJitter: true})
		if err != nil {
			b.Fatal(err)
		}
		cfg := workload.Config{Seed: 37, BufferBytes: 4 << 20}
		paths := make([]workload.Path, len(fab.Endpoints))
		bases := make([]uint64, len(fab.Endpoints))
		for j, ep := range fab.Endpoints {
			ep.Buffer.WarmHost(0, cfg.Footprint())
			paths[j] = ep.Port
			bases[j] = ep.Buffer.DMAAddr(0)
		}
		res, err := workload.RunMulti(fab.Kernel, paths, bases, cfg, 1000)
		if err != nil {
			b.Fatal(err)
		}
		pps, p99 = res.PPS, res.Latency.P99
	}
	b.ReportMetric(pps/1e6, "Mpps")
	b.ReportMetric(p99, "ns-p99")
}

// fabricSpec derives a partitionable contention fabric from the BDW
// calibration: eight sockets, endpoints round-robined across them with
// socket-local buffers, so simWorkers > 1 splits the build into eight
// independent simulation islands.
func fabricSpec(b *testing.B, endpoints, simWorkers int) topo.Spec {
	b.Helper()
	const sockets = 8
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := sys.TopoSpec(
		topo.Shape{Endpoints: 2, Placement: "split", LocalBuffers: true},
		sysconf.Options{Seed: 37, BufferSize: 1 << 20, NoJitter: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	spec.Mem.Nodes = sockets
	base := spec.Sockets[0]
	spec.Sockets = nil
	for i := 0; i < sockets; i++ {
		s := base
		s.Node = i
		spec.Sockets = append(spec.Sockets, s)
	}
	ep0 := spec.Endpoints[0]
	spec.Endpoints = nil
	for i := 0; i < endpoints; i++ {
		ep := ep0
		ep.Name = ""
		ep.Socket = i % sockets
		ep.BufferNode = i % sockets
		spec.Endpoints = append(spec.Endpoints, ep)
	}
	spec.SimWorkers = simWorkers
	return spec
}

// benchFabric builds the fabric and drives the traffic engine; serial
// and parallel variants below differ only in the simWorkers knob, so
// their ns/op delta is the coordinator overhead (this is a 1-core
// host: the parallel build buys determinism headroom, not speedup).
func benchFabric(b *testing.B, endpoints, simWorkers, pairs int) {
	b.ReportAllocs()
	var pps float64
	for i := 0; i < b.N; i++ {
		fab, err := topo.Build(fabricSpec(b, endpoints, simWorkers))
		if err != nil {
			b.Fatal(err)
		}
		res, err := topo.RunWorkload(fab, workload.Config{Seed: 37, BufferBytes: 1 << 20}, pairs)
		if err != nil {
			b.Fatal(err)
		}
		pps = res.PPS
	}
	b.ReportMetric(pps/1e6, "Mpps")
	b.ReportMetric(float64(endpoints), "endpoints")
}

// BenchmarkFabricSerial is the reference: the contention fabrics
// simulated by the single shared event kernel.
func BenchmarkFabricSerial(b *testing.B) {
	b.Run("8ep", func(b *testing.B) { benchFabric(b, 8, 1, 400) })
	b.Run("64ep", func(b *testing.B) { benchFabric(b, 64, 1, 60) })
}

// BenchmarkFabricParallel partitions the same fabrics into eight
// islands (simworkers=4); results are byte-identical to the serial
// runs, so the comparison isolates the partitioned-kernel overhead.
func BenchmarkFabricParallel(b *testing.B) {
	b.Run("8ep", func(b *testing.B) { benchFabric(b, 8, 4, 400) })
	b.Run("64ep", func(b *testing.B) { benchFabric(b, 64, 4, 60) })
}

// benchFabricCoupled drives a coupled topology — every endpoint behind
// one shared gen3x8 switch, a single simulation island — serially or
// through the windowed barrier-replay build. Results are byte-identical
// either way, so the ns/op delta isolates the staging/merge overhead.
func benchFabricCoupled(b *testing.B, endpoints, simWorkers, pairs int) {
	b.ReportAllocs()
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		b.Fatal(err)
	}
	uplink := pcie.DefaultGen3x8()
	var pps float64
	for i := 0; i < b.N; i++ {
		fab, err := sys.Fabric(topo.Shape{Endpoints: endpoints, Switch: &uplink},
			sysconf.Options{Seed: 37, BufferSize: 1 << 20, NoJitter: true, SimWorkers: simWorkers})
		if err != nil {
			b.Fatal(err)
		}
		res, err := topo.RunWorkload(fab, workload.Config{Seed: 37, BufferBytes: 1 << 20}, pairs)
		if err != nil {
			b.Fatal(err)
		}
		pps = res.PPS
	}
	b.ReportMetric(pps/1e6, "Mpps")
	b.ReportMetric(float64(endpoints), "endpoints")
}

// BenchmarkFabricCoupledSerial is the coupled reference: the shared
// switch simulated inline on the one event kernel.
func BenchmarkFabricCoupledSerial(b *testing.B) {
	b.Run("8ep", func(b *testing.B) { benchFabricCoupled(b, 8, 1, 400) })
	b.Run("64ep", func(b *testing.B) { benchFabricCoupled(b, 64, 1, 60) })
}

// BenchmarkFabricCoupledParallel runs the same fabrics as one coupled
// island: per-endpoint kernels staging pairs, a hub kernel replaying
// them at window barriers, completions over windowed channels.
func BenchmarkFabricCoupledParallel(b *testing.B) {
	b.Run("8ep", func(b *testing.B) { benchFabricCoupled(b, 8, 4, 400) })
	b.Run("64ep", func(b *testing.B) { benchFabricCoupled(b, 64, 4, 60) })
}

// BenchmarkIOMMUTranslate pins the translation hot path at zero
// allocations per op: sorted-mapping binary search, IO-TLB index hit
// with an intrusive-LRU touch, and the miss path through the walker
// pool with a tail eviction.
func BenchmarkIOMMUTranslate(b *testing.B) {
	const (
		window = 16 << 20
		iova   = uint64(1) << 40
	)
	build := func(b *testing.B) *iommu.IOMMU {
		b.Helper()
		u := iommu.New(sim.New(1), iommu.DefaultConfig())
		for off := 0; off < window; off += 4 << 20 {
			if err := u.Map(iova+uint64(off), 1<<30+uint64(off), 4<<20, iommu.Page4K); err != nil {
				b.Fatal(err)
			}
		}
		return u
	}
	b.Run("hit", func(b *testing.B) {
		u := build(b)
		if _, err := u.Translate(0, iova); err != nil { // prime the entry
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.Translate(0, iova); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		u := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		// Stride 4K pages across a window far beyond the 64-entry
		// IO-TLB, so every translation misses and evicts the LRU tail.
		var off uint64
		for i := 0; i < b.N; i++ {
			if _, err := u.Translate(0, iova+off); err != nil {
				b.Fatal(err)
			}
			off = (off + iommu.Page4K) % window
		}
	})
}

// benchFabricIOMMU drives the split fabric with every DMA translated:
// per-socket scope gives each socket its own DRHD-style unit, so the
// fabric still partitions into islands and the serial/parallel delta
// isolates the coordinator overhead with translation in the hot path.
func benchFabricIOMMU(b *testing.B, endpoints, simWorkers, pairs int) {
	b.ReportAllocs()
	var pps float64
	for i := 0; i < b.N; i++ {
		spec := fabricSpec(b, endpoints, simWorkers)
		cfg := iommu.DefaultConfig()
		spec.IOMMU = &cfg
		spec.IOMMUScope = topo.IOMMUScopePerSocket
		fab, err := topo.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err := topo.RunWorkload(fab, workload.Config{Seed: 37, BufferBytes: 1 << 20}, pairs)
		if err != nil {
			b.Fatal(err)
		}
		pps = res.PPS
	}
	b.ReportMetric(pps/1e6, "Mpps")
	b.ReportMetric(float64(endpoints), "endpoints")
}

// BenchmarkFabricIOMMUSerial is the translated reference: per-socket
// units on the single shared event kernel.
func BenchmarkFabricIOMMUSerial(b *testing.B) {
	b.Run("8ep", func(b *testing.B) { benchFabricIOMMU(b, 8, 1, 400) })
	b.Run("64ep", func(b *testing.B) { benchFabricIOMMU(b, 64, 1, 60) })
}

// BenchmarkFabricIOMMUParallel partitions the same translated fabrics
// (simworkers=4): each island's unit binds to that island's kernel, and
// results stay byte-identical to the serial runs.
func BenchmarkFabricIOMMUParallel(b *testing.B) {
	b.Run("8ep", func(b *testing.B) { benchFabricIOMMU(b, 8, 4, 400) })
	b.Run("64ep", func(b *testing.B) { benchFabricIOMMU(b, 64, 4, 60) })
}

// BenchmarkTopo_P2P compares device-to-device DMA against the bounce
// through host DRAM (512B transfers) and reports both medians.
func BenchmarkTopo_P2P(b *testing.B) {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		b.Fatal(err)
	}
	uplink := pcie.DefaultGen3x8()
	var direct, bounce float64
	for i := 0; i < b.N; i++ {
		run := func(mode string) float64 {
			fab, err := sys.Fabric(topo.Shape{Endpoints: 2, Switch: &uplink},
				sysconf.Options{BufferSize: 4 << 20, NoJitter: true})
			if err != nil {
				b.Fatal(err)
			}
			res, err := topo.RunP2P(fab, mode, 512, 400)
			if err != nil {
				b.Fatal(err)
			}
			return res.Latency.Median
		}
		direct, bounce = run(topo.P2PDirect), run(topo.P2PBounce)
	}
	b.ReportMetric(direct, "ns-direct")
	b.ReportMetric(bounce, "ns-bounce")
}

// ---- Hot-path micro-benchmarks ----

// BenchmarkTLPEncodeDecode measures the protocol tier's packet
// round-trip cost.
func BenchmarkTLPEncodeDecode(b *testing.B) {
	w := tlp.MemWrite{Addr: 0x1000, Data: make([]byte, 256), FirstBE: 0xF, LastBE: 0xF, Addr64: true}
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = w.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		var out tlp.MemWrite
		if _, err := out.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheDeviceAccess measures the LLC model's per-access cost,
// which bounds simulator throughput.
func BenchmarkCacheDeviceAccess(b *testing.B) {
	c := mem.NewCache(mem.CacheConfig{SizeBytes: 15 << 20, Ways: 20, LineSize: 64, DDIOWays: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%100000) * 64
		if i%2 == 0 {
			c.DeviceWrite(addr, true)
		} else {
			c.DeviceRead(addr)
		}
	}
}

// BenchmarkSimulatedDMARate measures end-to-end simulated DMA
// throughput (simulated transactions per wall second). The steady-state
// loop — event kernel, DMA engine, root complex, cache model — is
// allocation-free, which ReportAllocs keeps visible.
func BenchmarkSimulatedDMARate(b *testing.B) {
	inst := mustBuild(b, "NFP6000-HSW", sysconf.Options{BufferSize: 1 << 20, NoJitter: true})
	b.ReportAllocs()
	b.ResetTimer()
	res, err := bench.BwRd(inst.Target(), bench.Params{
		WindowSize: 8 << 10, TransferSize: 64,
		Cache: bench.HostWarm, Transactions: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Gbps, "sim-Gb/s")
}

// kernelLoopHandler reschedules itself until its budget is spent; a
// pool of them keeps the event heap populated so the benchmark
// exercises real sift-up/sift-down paths, not a single-element queue.
type kernelLoopHandler struct {
	budget int
	stride sim.Time
}

// Handle burns one event and schedules the next.
func (h *kernelLoopHandler) Handle(k *sim.Kernel, a, b int64) {
	if h.budget <= 0 {
		return
	}
	h.budget--
	k.AfterEvent(h.stride, h, a, b)
}

// BenchmarkKernelEventLoop measures the typed-event kernel alone:
// schedule plus dispatch of one event through the 4-ary heap with 16
// events outstanding. It must report 0 allocs/op — the sim package's
// TestTypedEventLoopZeroAlloc asserts the same property as a test, so
// a regression fails CI rather than just skewing this number.
func BenchmarkKernelEventLoop(b *testing.B) {
	k := sim.New(1)
	const handlers = 16
	for i := 0; i < handlers; i++ {
		budget := b.N / handlers
		if i < b.N%handlers {
			budget++ // distribute the remainder so exactly b.N events run
		}
		h := &kernelLoopHandler{
			budget: budget,
			stride: sim.Time(7 + i), // co-prime-ish strides keep the heap shuffled
		}
		k.AfterEvent(sim.Time(i), h, int64(i), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
