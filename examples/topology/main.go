// Command topology walks through the composable PCIe topology layer:
// it builds a fabric of four NICs behind one switch, saturates them
// concurrently, breaks the shared uplink down per hop, and finishes
// with a device-to-device DMA comparison — the scenarios the paper's
// single-adapter testbed could not express.
//
// Run with:
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"

	"pciebench/internal/sysconf"
	"pciebench/internal/topo"
	"pciebench/internal/workload"
)

func main() {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		log.Fatal(err)
	}

	// A Shape is the coarse selector: 4 endpoints, one shared Gen3 x8
	// switch uplink. sysconf expands it against the system's Table-1
	// calibration into a full topo.Spec and builds the fabric. (For
	// full control — per-endpoint links, multi-socket placement,
	// custom switch credits — build a topo.Spec by hand and call
	// topo.Build.)
	uplink, err := topo.ParseSwitch("gen3x8")
	if err != nil {
		log.Fatal(err)
	}
	fab, err := sys.Fabric(topo.Shape{Endpoints: 4, Switch: uplink}, sysconf.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, sw := range fab.Switches {
		sw.EnableWaitSampling() // record per-TLP arbitration waits
	}

	// Saturate all four NICs at once: each runs the multi-queue
	// traffic engine on its own port; contention happens naturally on
	// the shared uplink because everything shares one event kernel.
	cfg := workload.Config{Seed: 1, BufferBytes: fab.Endpoints[0].Buffer.Size}
	res, err := topo.RunWorkload(fab, cfg, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 NICs / 1 uplink: %.2fM pps aggregate, %.2f Gb/s/dir, p99 %.0fns\n",
		res.PPS/1e6, res.GbpsPerDirection, res.Latency.P99)
	for _, ep := range res.Endpoints {
		fmt.Printf("  %-8s %.2fM pps  %.2f Gb/s  p99 %.0fns\n",
			fab.Endpoints[ep.Endpoint].Name, ep.PPS/1e6, ep.GbpsPerDirection, ep.Latency.P99)
	}
	// Per-hop view: how long TLPs queued for the shared uplink.
	if ws, ok := fab.Switches[0].WaitSummary(true); ok {
		fmt.Printf("  uplink arbitration wait: p50 %.0fns  p99 %.0fns  max %.0fns\n",
			ws.Median, ws.P99, ws.Max)
	}

	// Peer-to-peer: endpoint 0 DMAs into endpoint 1's BAR window
	// directly through the switch, vs bouncing through host DRAM.
	// (Multi-endpoint fabrics get BAR windows automatically.)
	p2p, err := sys.Fabric(topo.Shape{Endpoints: 2, Switch: uplink}, sysconf.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []string{topo.P2PDirect, topo.P2PBounce} {
		r, err := topo.RunP2P(p2p, mode, 512, 400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p2p %-6s 512B: p50 %.0fns  p99 %.0fns  %.2f Gb/s\n",
			mode, r.Latency.Median, r.Latency.P99, r.Gbps)
	}
}
