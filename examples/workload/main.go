// workload shows the multi-queue traffic engine as a capacity-planning
// tool: how do queue count, packet-size mix and arrival burstiness
// move a NIC's packet rate and latency tail on one PCIe Gen3 x8 link?
//
// Two quick studies on the paper's NFP6000-HSW system:
//
//  1. Closed-loop IMIX saturation across queue counts — aggregate rate
//     is link-bound, so more queues buy no throughput but cost tail
//     latency.
//  2. The same offered load delivered smoothly vs in Poisson bursts —
//     equal mean rate, very different p99.9.
//
// Run with: go run ./examples/workload
package main

import (
	"fmt"
	"log"

	"pciebench/internal/sysconf"
	"pciebench/internal/workload"
)

func main() {
	const pairs = 4000

	fmt.Println("Closed-loop IMIX saturation, DPDK-style driver:")
	fmt.Println("  queues      Mpps     Gb/s   p50(ns)  p99(ns)  p99.9(ns)")
	for _, queues := range []int{1, 2, 4, 8} {
		res := run(workload.Config{
			Queues: queues, Window: 16, Sizes: workload.IMIX(),
			Moderation: workload.Moderation{IntrEvery: -1}, // poll mode
			Seed:       37,
		}, pairs)
		fmt.Printf("  %6d  %8.3f  %7.2f  %7.0f  %7.0f  %9.0f\n",
			queues, res.PPS/1e6, res.GbpsPerDirection,
			res.Latency.Median, res.Latency.P99, res.Latency.P999)
	}

	fmt.Println("\nSame 4Mpps offered IMIX load, smooth vs bursty (4 queues):")
	smooth, err := workload.FixedRate(4e6, 1)
	if err != nil {
		log.Fatal(err)
	}
	bursty, err := workload.Poisson(4e6, 64)
	if err != nil {
		log.Fatal(err)
	}
	for _, arr := range []workload.Arrival{smooth, bursty} {
		res := run(workload.Config{
			Queues: 4, Window: 8, Sizes: workload.IMIX(), Arrival: arr, Seed: 37,
		}, pairs)
		fmt.Printf("  %-22s p50 %5.0fns  p99 %6.0fns  p99.9 %6.0fns\n",
			arr, res.Latency.Median, res.Latency.P99, res.Latency.P999)
	}
	fmt.Println("\n-> burstiness, not mean load, builds the tail; size queues for it.")
}

// run builds a fresh instance and drives one workload.
func run(cfg workload.Config, pairs int) *workload.Result {
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := sys.Build(sysconf.Options{BufferSize: 4 << 20, NoJitter: true})
	if err != nil {
		log.Fatal(err)
	}
	inst.Buffer.WarmHost(0, cfg.Footprint())
	res, err := workload.Run(inst.Kernel, inst.RC, inst.Buffer.DMAAddr(0), cfg, pairs)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
