// iommu sweeps the benchmark window across the IO-TLB reach on a
// 2-socket Broadwell system, with 4KB mappings (the paper's sp_off) and
// with superpages, demonstrating §6.5 and the Table 2 recommendation:
// co-locate DMA buffers in superpages.
//
// Run with: go run ./examples/iommu
package main

import (
	"fmt"
	"log"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
)

func main() {
	sys, err := sysconf.ByName("NFP6000-BDW")
	if err != nil {
		log.Fatal(err)
	}

	run := func(iommuOn, superpages bool, window int) float64 {
		inst, err := sys.Build(sysconf.Options{
			IOMMU:      iommuOn,
			SuperPages: superpages,
			NoJitter:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.BwRd(inst.Target(), bench.Params{
			WindowSize:   window,
			TransferSize: 64,
			Cache:        bench.HostWarm,
			Transactions: 20000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Gbps
	}

	fmt.Println("64B DMA read bandwidth on NFP6000-BDW (Gb/s)")
	fmt.Println("window     no IOMMU   IOMMU sp_off   IOMMU superpages")
	for _, win := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20} {
		off := run(false, false, win)
		sp4k := run(true, false, win)
		sp2m := run(true, true, win)
		fmt.Printf("%-9s  %8.1f   %12.1f   %16.1f\n", size(win), off, sp4k, sp2m)
	}
	fmt.Println()
	fmt.Println("With 4KB mappings the IO-TLB covers 64 entries x 4KB = 256KB;")
	fmt.Println("beyond that every request pays a page walk and the walker pool")
	fmt.Println("caps translation throughput (the paper's ~-70% cliff at 64B).")
	fmt.Println("Superpages keep the working set inside the IO-TLB at every")
	fmt.Println("window size — the paper's recommendation made visible.")
}

func size(v int) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%dMB", v>>20)
	default:
		return fmt.Sprintf("%dKB", v>>10)
	}
}
