// Quickstart: build one of the paper's systems, run a latency and a
// bandwidth micro-benchmark against it, and print the summaries.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
)

func main() {
	// Pick the NFP6000-in-Haswell system from Table 1 and assemble a
	// runnable instance: memory system, root complex, DMA engine and a
	// host DMA buffer.
	sys, err := sysconf.ByName("NFP6000-HSW")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	tgt := inst.Target()

	// LAT_RD: 64-byte DMA reads from a warm 8KB window — the paper's
	// Figure 6 baseline.
	lat, err := bench.LatRd(tgt, bench.Params{
		WindowSize:   8 << 10,
		TransferSize: 64,
		Cache:        bench.HostWarm,
		Transactions: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s:\n  %s\n", lat.Name, sys.Name, lat.Summary)

	// BW_RD: the same window, measured for throughput (Figure 4a's
	// 64-byte point).
	bw, err := bench.BwRd(tgt, bench.Params{
		WindowSize:   8 << 10,
		TransferSize: 64,
		Cache:        bench.HostWarm,
		Transactions: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s:\n  %.2f Gb/s (%.1fM transactions/s)\n",
		bw.Name, sys.Name, bw.Gbps, bw.TxnPerSec/1e6)

	fmt.Println("\nTip: see cmd/pcie-bench for the full CLI and cmd/pcie-repro")
	fmt.Println("for regenerating every figure and table of the paper.")
}
