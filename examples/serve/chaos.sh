#!/usr/bin/env sh
# Chaos smoke for pcie-served's hardening: boots the server with tight
# limits and checks the failure paths fail the right way — an oversized
# submission gets a clean 413, a deliberately slow client is cut off by
# the read deadline instead of holding a connection open, and a job
# that overruns its wall-clock budget lands in the dedicated "timeout"
# state (and its results answer 504) while a reasonable job still
# completes.
#
# Run from the repository root:  sh examples/serve/chaos.sh
# Requires curl; uses jq when present (falls back to sed).
set -eu

PORT="${PORT:-18081}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"

cleanup() {
    [ -n "${SERVED_PID:-}" ] && kill "$SERVED_PID" 2>/dev/null || true
    [ -n "${SERVED_PID:-}" ] && wait "$SERVED_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

field() { # field <json-file> <key>  -> numeric/string field value
    if command -v jq >/dev/null 2>&1; then
        jq -r ".$2" "$1"
    else
        sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"}]*\)\"\{0,1\}.*/\1/p" "$1" | head -1
    fi
}

echo "==> building pcie-served"
go build -o "$WORK/pcie-served" ./cmd/pcie-served

echo "==> starting pcie-served with tight limits (max-body 4KiB, read-timeout 1s, job-timeout 1s)"
"$WORK/pcie-served" -addr "127.0.0.1:$PORT" -cache off -workers 1 \
    -max-body 4096 -read-timeout 1s -job-timeout 1s &
SERVED_PID=$!

for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    [ "$i" = 50 ] && { echo "server never became healthy" >&2; exit 1; }
    sleep 0.2
done

echo "==> oversized submission gets 413"
head -c 8192 /dev/zero | tr '\0' 'x' >"$WORK/huge.json"
CODE="$(curl -s -o "$WORK/huge-resp.json" -w '%{http_code}' \
    -X POST --data-binary "@$WORK/huge.json" "$BASE/v1/sweeps")"
[ "$CODE" = 413 ] || { echo "oversized body got $CODE, want 413" >&2; exit 1; }
echo "    413: $(field "$WORK/huge-resp.json" error)"

echo "==> slow client is cut off by the read deadline"
# 64 KiB body at 1 KiB/s would take a minute; the 1s read deadline
# must end the request long before that (a fast 4xx or a dropped
# connection both count — what matters is that the connection is not
# held and the job is never accepted).
head -c 65536 /dev/zero | tr '\0' 'y' >"$WORK/slow.json"
START="$(date +%s)"
CODE="$(curl -s --limit-rate 1K --max-time 30 -o /dev/null -w '%{http_code}' \
    -X POST --data-binary "@$WORK/slow.json" "$BASE/v1/sweeps")" || true
ELAPSED=$(( $(date +%s) - START ))
[ "$ELAPSED" -lt 10 ] || { echo "slow client held the connection ${ELAPSED}s" >&2; exit 1; }
[ "$CODE" != 202 ] || { echo "slow oversized submission was accepted" >&2; exit 1; }
echo "    cut off after ${ELAPSED}s (HTTP $CODE)"

echo "==> overrunning job is reported as \"timeout\""
# 32 cells at ~0.3s each on one worker blows the 1s job deadline fast.
cat >"$WORK/slow-sweep.json" <<'SPEC'
{
  "name": "chaos-slow",
  "axes": [{"name": "seed", "values": [
    "1","2","3","4","5","6","7","8","9","10","11","12","13","14","15","16",
    "17","18","19","20","21","22","23","24","25","26","27","28","29","30","31","32"
  ]}],
  "base": {"bench": "lat_rd", "transfer": "64", "n": "1M", "window": "8K"}
}
SPEC
curl -fsS -X POST --data-binary "@$WORK/slow-sweep.json" "$BASE/v1/sweeps" >"$WORK/sub.json"
ID="$(field "$WORK/sub.json" id)"
STATE=
for i in $(seq 1 100); do
    curl -fsS "$BASE/v1/sweeps/$ID" >"$WORK/status.json"
    STATE="$(field "$WORK/status.json" state)"
    case "$STATE" in timeout|done|error|cancelled) break ;; esac
    sleep 0.3
done
[ "$STATE" = timeout ] || { echo "job ended in \"$STATE\", want \"timeout\"" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sweeps/$ID/results")"
[ "$CODE" = 504 ] || { echo "timed-out job's results got $CODE, want 504" >&2; exit 1; }
echo "    job $ID: state=timeout, results answer 504"

echo "==> a job within the budget still completes"
cat >"$WORK/fast-sweep.json" <<'SPEC'
{
  "name": "chaos-fast",
  "axes": [{"name": "transfer", "values": ["64", "128"]}],
  "base": {"bench": "lat_rd", "n": "2K", "window": "8K"}
}
SPEC
curl -fsS -X POST --data-binary "@$WORK/fast-sweep.json" "$BASE/v1/sweeps" >"$WORK/sub2.json"
ID2="$(field "$WORK/sub2.json" id)"
STATE=
for i in $(seq 1 100); do
    curl -fsS "$BASE/v1/sweeps/$ID2" >"$WORK/status2.json"
    STATE="$(field "$WORK/status2.json" state)"
    case "$STATE" in timeout|done|error|cancelled) break ;; esac
    sleep 0.2
done
[ "$STATE" = done ] || { echo "fast job ended in \"$STATE\", want \"done\"" >&2; exit 1; }
echo "    job $ID2 done"

echo "==> SIGTERM shuts down cleanly"
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=
echo "==> chaos smoke OK"
