#!/usr/bin/env sh
# End-to-end walkthrough of pcie-served, the sweep service. Builds the
# server, boots it on an ephemeral port, submits a registered sweep and
# a spec file over HTTP, checks the served TSV is byte-identical to the
# CLI's, resubmits to show the content-addressed cache answering
# without executing a single cell, and shuts down with SIGTERM.
#
# Run from the repository root:  sh examples/serve/smoke.sh
# Requires curl; uses jq when present (falls back to grep).
set -eu

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SPEC=examples/sweeps/topo-contend.json
# Keep the walkthrough fast: override the per-cell transaction count.
SET='set=n=200'

cleanup() {
    [ -n "${SERVED_PID:-}" ] && kill "$SERVED_PID" 2>/dev/null || true
    [ -n "${SERVED_PID:-}" ] && wait "$SERVED_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

field() { # field <json-file> <key>  -> numeric/string field value
    if command -v jq >/dev/null 2>&1; then
        jq -r ".$2" "$1"
    else
        sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"}]*\)\"\{0,1\}.*/\1/p" "$1" | head -1
    fi
}

echo "==> building pcie-served"
go build -o "$WORK/pcie-served" ./cmd/pcie-served

echo "==> starting pcie-served on $BASE"
"$WORK/pcie-served" -addr "127.0.0.1:$PORT" -cache mem &
SERVED_PID=$!

for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    [ "$i" = 50 ] && { echo "server never became healthy" >&2; exit 1; }
    sleep 0.2
done

echo "==> registry holds the paper-figure sweeps"
curl -fsS "$BASE/v1/registry" | { jq -r '.[].name' 2>/dev/null || cat; } | head -5

echo "==> submitting $SPEC ($SET)"
curl -fsS -X POST --data-binary "@$SPEC" "$BASE/v1/sweeps?$SET" >"$WORK/sub1.json"
ID="$(field "$WORK/sub1.json" id)"
echo "    job $ID accepted ($(field "$WORK/sub1.json" cells) cells)"

echo "==> streaming incremental results"
curl -fsSN "$BASE/v1/sweeps/$ID/results?stream=1" | tail -3

echo "==> served TSV must equal the CLI's, byte for byte"
curl -fsS "$BASE/v1/sweeps/$ID/results?format=tsv" >"$WORK/served.tsv"
go run ./cmd/pcie-repro -spec "$SPEC" -format tsv n=200 >"$WORK/cli.tsv"
cmp "$WORK/served.tsv" "$WORK/cli.tsv"
echo "    identical ($(wc -l <"$WORK/served.tsv") lines)"

echo "==> identical resubmission is answered from cache"
curl -fsS -X POST --data-binary "@$SPEC" "$BASE/v1/sweeps?$SET" >"$WORK/sub2.json"
ID2="$(field "$WORK/sub2.json" id)"
curl -fsS "$BASE/v1/sweeps/$ID2/results?format=tsv" >"$WORK/served2.tsv"
cmp "$WORK/served.tsv" "$WORK/served2.tsv"
curl -fsS "$BASE/v1/sweeps/$ID2" >"$WORK/status2.json"
EXECUTED="$(field "$WORK/status2.json" executed)"
HITS="$(field "$WORK/status2.json" cache_hits)"
echo "    resubmit executed $EXECUTED cells ($HITS cache hits)"
[ "$EXECUTED" = 0 ] || { echo "cache failed to dedup the resubmission" >&2; exit 1; }

echo "==> SIGTERM shuts down cleanly"
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
SERVED_PID=
echo "==> service smoke OK"
