// latencytail compares the 64B DMA-read latency distributions of the
// Xeon E5 (NFP6000-HSW) and Xeon E3 (NFP6000-HSW-E3) systems, printing
// the percentile table and CDF behind the paper's Figure 6 — the
// "surprising differences between implementations even from the same
// vendor".
//
// Run with: go run ./examples/latencytail
package main

import (
	"fmt"
	"log"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
)

func main() {
	const n = 100000
	fmt.Printf("64B DMA reads, warm cache, %d samples per system\n\n", n)
	fmt.Println("system           min      med      p95      p99      p99.9    max")

	var cdfs []*bench.LatencyResult
	for _, name := range []string{"NFP6000-HSW", "NFP6000-HSW-E3"} {
		sys, err := sysconf.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := sys.Build(sysconf.Options{BufferSize: 1 << 20, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.LatRd(inst.Target(), bench.Params{
			WindowSize:   8 << 10,
			TransferSize: 64,
			Cache:        bench.HostWarm,
			Transactions: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-15s %7.0f %8.0f %8.0f %8.0f %8.0f %8.0f   (ns)\n",
			name, s.Min, s.Median, s.P95, s.P99, s.P999, s.Max)
		cdfs = append(cdfs, res)
	}

	fmt.Println("\nWhat a NIC designer should take from this (paper §7): the DMA")
	fmt.Println("engine must size its in-flight window for the tail, not the")
	fmt.Println("median — on the E3 that means covering milliseconds, which is")
	fmt.Println("why the paper calls such systems out as hard targets for")
	fmt.Println("high-rate NIC firmware.")

	// Emit a coarse CDF for plotting.
	fmt.Println("\n# CDF (ns -> fraction), both systems")
	for _, res := range cdfs {
		cdf, err := res.CDF()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# %s\n", res.Params)
		for _, p := range []float64{0.01, 0.25, 0.5, 0.63, 0.75, 0.9, 0.99, 0.999} {
			fmt.Printf("%8.0f\t%.3f\n", cdf.InverseAt(p), p)
		}
		fmt.Println()
	}
}
