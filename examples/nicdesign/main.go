// nicdesign shows the paper's "assess design alternatives" use case
// (§3, §7): express a custom NIC/driver design as its per-packet PCIe
// transactions, evaluate it with the analytical model, then check the
// winning design against the discrete-event simulator.
//
// The scenario: a programmable-NIC team wants 40Gb/s line rate at 256B
// packets and iterates on descriptor batching to get there.
//
// Run with: go run ./examples/nicdesign
package main

import (
	"fmt"
	"log"

	"pciebench/internal/hostif"
	"pciebench/internal/mem"
	"pciebench/internal/model"
	"pciebench/internal/nicsim"
	"pciebench/internal/pcie"
	"pciebench/internal/rc"
	"pciebench/internal/sim"
)

func main() {
	cfg := pcie.DefaultGen3x8()
	const pktSz = 256
	target := model.EthernetLineRate(40e9, pktSz) / 1e9

	fmt.Printf("Goal: 40G line rate at %dB packets = %.2f Gb/s payload\n\n", pktSz, target)

	// Iterate through design alternatives, varying TX descriptor batch
	// size. Everything else follows the modern kernel-driver design.
	designs := []struct {
		name  string
		batch int
	}{
		{"per-packet descriptors", 1},
		{"batch of 4", 4},
		{"batch of 8", 8},
		{"batch of 40 (Niantic-style)", 40},
	}
	mk := func(batch int) model.NIC {
		return model.NIC{
			Name: fmt.Sprintf("batch-%d", batch),
			TX: []model.Interaction{
				{Name: "doorbell", Kind: model.MMIOWrite, Bytes: 4, PerPackets: float64(batch)},
				{Name: "desc fetch", Kind: model.DMARead, Bytes: 16 * batch, PerPackets: float64(batch)},
				{Name: "desc write-back", Kind: model.DMAWrite, Bytes: 16 * batch, PerPackets: float64(batch)},
			},
			RX: []model.Interaction{
				{Name: "freelist doorbell", Kind: model.MMIOWrite, Bytes: 4, PerPackets: float64(batch)},
				{Name: "freelist fetch", Kind: model.DMARead, Bytes: 16 * batch, PerPackets: float64(batch)},
				{Name: "rx desc write-back", Kind: model.DMAWrite, Bytes: 16 * batch, PerPackets: float64(batch)},
			},
		}
	}

	var winner model.NIC
	fmt.Println("Analytical model (instant):")
	for _, d := range designs {
		nic := mk(d.batch)
		bw := nic.Bandwidth(cfg, pktSz) / 1e9
		verdict := "below line rate"
		if bw >= target {
			verdict = "MEETS line rate"
			if winner.Name == "" {
				winner = nic
			}
		}
		fmt.Printf("  %-28s %6.2f Gb/s  %s\n", d.name, bw, verdict)
	}
	if winner.Name == "" {
		winner = mk(40)
	}

	// Validate the chosen design end-to-end on the simulator, where
	// latency, the root-complex pipeline and cache effects all apply.
	fmt.Printf("\nValidating %q on the discrete-event simulator...\n", winner.Name)
	k := sim.New(1)
	ms, err := mem.NewSystem(mem.Config{
		Nodes:       1,
		Cache:       mem.CacheConfig{SizeBytes: 15 << 20, Ways: 20, LineSize: 64, DDIOWays: 2},
		LLCLatency:  50 * sim.Nanosecond,
		DRAMLatency: 120 * sim.Nanosecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	host := hostif.New(ms, nil)
	complex, err := rc.New(k, rc.Config{
		Link: cfg, PipeLatency: 100 * sim.Nanosecond, PipeSlots: 24,
		WireDelay: 120 * sim.Nanosecond,
	}, ms, nil, host)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := host.Alloc(4<<20, 0, hostif.Chunked4M, 0)
	if err != nil {
		log.Fatal(err)
	}
	buf.WarmHost(0, 64<<10)
	res, err := nicsim.Throughput(k, complex, winner, buf.DMAAddr(0), pktSz, 20000, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated: %.2f Gb/s per direction (%.2fM pkt/s)\n",
		res.GbpsPerDirection, res.PairsPerSec/1e6)
	if res.GbpsPerDirection >= target {
		fmt.Println("  -> design holds up under simulation.")
	} else {
		fmt.Println("  -> simulation disagrees with the model; revisit latency budget.")
	}
}
