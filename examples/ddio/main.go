// ddio sweeps the benchmark window across the LLC and its DDIO region
// on the Sandy Bridge system, reproducing the mechanism behind the
// paper's Figure 7: PCIe reads are served from the cache when resident,
// and DMA writes land in a ~10% slice of the LLC — outgrow it and every
// partial-line write pays a read-modify-write from DRAM.
//
// Run with: go run ./examples/ddio
package main

import (
	"fmt"
	"log"

	"pciebench/internal/bench"
	"pciebench/internal/sysconf"
)

func main() {
	sys, err := sysconf.ByName("NFP6000-SNB")
	if err != nil {
		log.Fatal(err)
	}
	llc := sys.LLCBytes
	ddio := llc / 10
	fmt.Printf("NFP6000-SNB: LLC %dMB, DDIO region ~%.1fMB (10%%)\n\n", llc>>20, float64(ddio)/(1<<20))
	fmt.Println("8B latency via the direct PCIe command interface (ns):")
	fmt.Println("window      LAT_RD cold  LAT_RD warm  LAT_WRRD cold  LAT_WRRD warm")

	for _, win := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20} {
		row := []float64{}
		for _, test := range []struct {
			wr    bool
			cache bench.CacheState
		}{
			{false, bench.Cold}, {false, bench.HostWarm},
			{true, bench.Cold}, {true, bench.HostWarm},
		} {
			inst, err := sys.Build(sysconf.Options{NoJitter: true})
			if err != nil {
				log.Fatal(err)
			}
			p := bench.Params{
				WindowSize:   win,
				TransferSize: 8,
				Cache:        test.cache,
				Transactions: 2000,
				Direct:       true,
			}
			run := bench.LatRd
			if test.wr {
				run = bench.LatWrRd
			}
			res, err := run(inst.Target(), p)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.Summary.Median)
		}
		mark := ""
		if win > llc {
			mark = "  <- beyond LLC"
		} else if win > ddio {
			mark = "  <- beyond DDIO region"
		}
		fmt.Printf("%-10s %12.0f %12.0f %14.0f %14.0f%s\n",
			size(win), row[0], row[1], row[2], row[3], mark)
	}

	fmt.Println("\nReading the table (paper §6.3 and Table 2):")
	fmt.Println(" - warm reads are ~70ns cheaper until the window outgrows the LLC;")
	fmt.Println(" - cold write+read stays fast only while the window fits the DDIO")
	fmt.Println("   slice: descriptor rings belong there, which is why DDIO helps")
	fmt.Println("   small-packet receive and ring access.")
}

func size(v int) string {
	if v >= 1<<20 {
		return fmt.Sprintf("%dMB", v>>20)
	}
	return fmt.Sprintf("%dKB", v>>10)
}
