module pciebench

go 1.24
